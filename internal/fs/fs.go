// Package fs models the host filesystem and page-cache tier that real
// applications sit behind — the layer whose relative cost explodes once
// the device underneath drops to Z-SSD latencies (the paper's core
// system-level finding, and the overhead catalog of the Tehrany et al.
// file-system survey): buffered reads that pay a memcpy on every hit and
// a block read plus a cache insert on every miss, write-back buffered
// writes absorbed by a dirty-page pool and flushed by a background
// writer, readahead for sequential streams, and fsync(2) with three
// journaling modes — none, ext4-style data=ordered commits (journal
// write, barrier flush, commit record, second flush), and an F2FS-style
// log-structured mode whose append segments must be cleaned under
// utilization pressure.
//
// The FS composes as a topology layer (core.FS) over any Target that
// can flush — a single stack, a striped volume, a tier — and is itself
// a Target plus a Syncer, so the unchanged workload engines drive it.
package fs

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/probe"
	"repro/internal/sim"
)

// JournalMode selects the fsync commit protocol.
type JournalMode int

// The three modes.
const (
	// NoJournal issues a bare device flush: writeback plus one barrier,
	// no commit records (ext2-style, or a raw block device).
	NoJournal JournalMode = iota
	// OrderedJournal is ext4 data=ordered with barriers: data writeback,
	// journal record write, flush, commit record write, second flush.
	OrderedJournal
	// LogStructured is the F2FS shape: data and node blocks append into
	// segments and one barrier suffices, but filled segments must be
	// cleaned — live data copied out — and the cleaning bill grows with
	// utilization.
	LogStructured
)

func (m JournalMode) String() string {
	switch m {
	case NoJournal:
		return "none"
	case OrderedJournal:
		return "ordered"
	case LogStructured:
		return "log"
	default:
		return fmt.Sprintf("JournalMode(%d)", int(m))
	}
}

// StageCost mirrors kernel.StageCost for the filesystem tier.
type StageCost struct {
	Time   sim.Time
	Loads  uint64
	Stores uint64
}

// Costs is the calibrated cost table of the filesystem/page-cache code
// paths. These are the host-software costs the paper's Section IV
// argument is about: fixed per-operation work that is noise behind a
// 100us flash read and a first-order latency component behind a 3us
// Z-NAND read.
type Costs struct {
	Syscall     StageCost // read/write/fsync entry + exit
	Lookup      StageCost // per-page radix-tree (xarray) lookup
	CopyPerPage StageCost // per-page user<->page-cache memcpy (4KiB)
	Insert      StageCost // per-page allocation + tree insert + LRU link
	FsyncCall   StageCost // fsync dirty-list walk and writeback setup
	JournalPrep StageCost // per-commit journal transaction preparation
}

// DefaultCosts returns the calibrated table.
func DefaultCosts() Costs {
	return Costs{
		Syscall:     StageCost{Time: 120 * sim.Nanosecond, Loads: 60, Stores: 40},
		Lookup:      StageCost{Time: 150 * sim.Nanosecond, Loads: 40, Stores: 6},
		CopyPerPage: StageCost{Time: 420 * sim.Nanosecond, Loads: 256, Stores: 256},
		Insert:      StageCost{Time: 500 * sim.Nanosecond, Loads: 120, Stores: 140},
		FsyncCall:   StageCost{Time: 400 * sim.Nanosecond, Loads: 150, Stores: 60},
		JournalPrep: StageCost{Time: 1800 * sim.Nanosecond, Loads: 420, Stores: 380},
	}
}

// Tuning defaults, applied where Config leaves the zero value.
const (
	DefaultPageSize       = 4096
	DefaultDirtyRatio     = 0.20
	DefaultDirtyExpire    = 5 * sim.Millisecond
	DefaultWritebackBatch = 64
	DefaultCommitBytes    = 4096
	DefaultJournalBytes   = 8 << 20
	DefaultLogBytes       = 32 << 20
	DefaultSegmentBytes   = 1 << 20
	DefaultLogUtilization = 0.5
	// cleanChunk is the unit of segment-cleaning I/O.
	cleanChunk = 64 << 10
)

// Config parameterizes the filesystem layer.
type Config struct {
	// PageSize is the cache page in bytes (0: 4096).
	PageSize int
	// CacheBytes is the page-cache capacity. Zero (or negative) disables
	// caching entirely — every read and write passes straight through,
	// O_DIRECT style. This is not a sentinel for a default: an FS with
	// no cache and NoJournal lowers to a bit-exact passthrough.
	CacheBytes int64
	// ReadaheadPages prefetches this many pages past a detected
	// sequential read stream (0: readahead off).
	ReadaheadPages int
	// DirtyRatio is the dirty-page fraction of the cache at which the
	// background flusher kicks in (0: 0.20); it drains to half the
	// threshold.
	DirtyRatio float64
	// DirtyExpire writes a dirty page back once it has aged this long
	// regardless of the ratio (0: 5ms of simulated time; <0 disables).
	DirtyExpire sim.Time
	// WritebackBatch caps the pages one background flusher pass takes
	// (0: 64). Adjacent pages in a batch coalesce into single writes.
	WritebackBatch int

	// Journal selects the fsync commit protocol.
	Journal JournalMode
	// JournalBytes reserves the journal (OrderedJournal) or log-segment
	// area (LogStructured) at the top of the child's capacity
	// (0: 8MiB ordered, 32MiB log). Ignored under NoJournal.
	JournalBytes int64
	// CommitBytes sizes one journal record / commit block / node block
	// (0: 4096).
	CommitBytes int
	// SegmentBytes is the LogStructured append-segment size (0: 1MiB).
	SegmentBytes int64
	// LogUtilization is the live fraction the cleaner must copy out of
	// every reclaimed segment (0: 0.5) — the classic LFS cleaning cost
	// dial: at 0.9, reclaiming one segment moves 0.9 segments of data.
	LogUtilization float64

	// Costs overrides the filesystem cost table; nil means the
	// calibrated defaults. A pointer carries presence, so a
	// deliberately-zero table is honored, never silently replaced.
	Costs *Costs
}

// Passthrough reports whether the config models no filesystem work at
// all — no cache, no journal — in which case the topology lowering
// skips the layer entirely and the child is used as-is (fsync on the
// composed system degenerates to a bare device flush).
func (c Config) Passthrough() bool {
	return c.CacheBytes <= 0 && c.Journal == NoJournal
}

// Backend is the downstream contract the FS drives: any Target that can
// also execute a durability barrier (every stack and volume can).
type Backend interface {
	Submit(write bool, offset int64, length int, done func())
	Flush(done func())
}

// Stats counts the filesystem layer's activity.
type Stats struct {
	Reads, Writes   uint64 // host operations
	PagesRead       uint64 // pages touched by reads
	PagesWritten    uint64 // pages touched by writes
	Hits, Misses    uint64 // page-cache read lookups
	Readaheads      uint64 // pages prefetched
	Inserted        uint64 // pages inserted into the cache
	Evicted         uint64 // clean pages evicted to make room
	InsertSkips     uint64 // fills dropped: no clean page to evict
	WriteThrough    uint64 // buffered writes forced straight down
	RMWReads        uint64 // partial-page fills read before overwrite
	DirtyPages      int64  // currently dirty (incl. writeback in flight)
	WritebackPages  uint64 // pages written back (background + fsync)
	WritebackWrites uint64 // coalesced child writes issued for writeback
	Fsyncs          uint64
	JournalWrites   uint64 // journal / commit / node blocks written
	Barriers        uint64 // device flushes issued
	SegsCleaned     uint64 // LogStructured: segments reclaimed
	CleanedBytes    int64  // LogStructured: live bytes copied by cleaning
}

// FS is a built filesystem layer: a Target + Syncer over one Backend.
type FS struct {
	eng   *sim.Engine
	core  *cpu.Core
	cfg   Config
	costs Costs

	ps       int64 // page size
	pages    int64 // cache capacity in pages; 0 = cache disabled
	exported int64

	gate gate

	// Page cache: mapped pages, the clean LRU (evictable pages only),
	// and the dirty FIFO (oldest first).
	cache                map[int64]*page
	cleanHead, cleanTail *page
	dirtyHead, dirtyTail *page
	nCached, nDirty      int64
	highDirty, lowDirty  int64

	// Readahead stream detection.
	lastEnd int64
	streak  int
	raNext  int64

	// Background writeback.
	wbActive    bool
	wbPages     []*page
	wbSort      wbSorter
	wbLeft      int
	wbExtentFn  func()
	expireArmed bool
	expireFn    func()

	// Fsync machinery: one sync runs at a time, the rest queue.
	syncActive    bool
	syncStage     int
	syncWaitClean bool
	syncQ         sim.FIFO[func()]
	syncStepFn    func()

	// Journal / log cursors (child offsets inside the reserved area).
	journalOff, journalLen int64
	jcursor                int64

	// LogStructured cleaning state.
	logBytes    int64 // bytes appended to the log since mount
	segFilled   int64 // segments fully consumed so far
	cleanDebt   int64 // live bytes still to copy before new segments are free
	cleanedAcc  int64 // copied live bytes not yet credited as a reclaimed segment
	cleaning    bool
	cleanCursor int64
	cleanRdFn   func()
	cleanWrFn   func()
	cleanChunkN int

	freeOps     *fsOp
	freeFills   *fill
	fillIssueFn func(any) // bound once: issue a delayed page fill

	// Observability: foreground spans mark cache/journal phases; the
	// flusher and cleaner emit background trace events. syncSpans stays
	// aligned with syncQ (one entry per queued fsync, possibly nil) so
	// syncAdvance can mark the active sync's span. Nil probe = all off.
	pr        *probe.Probe
	wbTrack   string
	clTrack   string
	wbStart   sim.Time
	clStart   sim.Time
	syncSpans []*probe.Span

	stats Stats
}

// New builds a filesystem layer over dev. devBytes is the child's
// exported capacity; serialDev marks a child that serves one request at
// a time (a bare pvsync2 stack), which the FS serializes behind an
// internal gate — the cache absorbs the concurrency above it.
func New(eng *sim.Engine, core *cpu.Core, dev Backend, devBytes int64, serialDev bool, cfg Config) *FS {
	f := &FS{eng: eng, core: core, cfg: cfg}
	f.costs = DefaultCosts()
	if cfg.Costs != nil {
		f.costs = *cfg.Costs
	}
	f.ps = int64(cfg.PageSize)
	if f.ps <= 0 {
		f.ps = DefaultPageSize
	}
	if cfg.CacheBytes > 0 {
		f.pages = cfg.CacheBytes / f.ps
		if f.pages < 1 {
			panic("fs: cache smaller than one page")
		}
	}
	ratio := cfg.DirtyRatio
	if ratio <= 0 {
		ratio = DefaultDirtyRatio
	}
	f.highDirty = int64(ratio * float64(f.pages))
	if f.highDirty < 1 {
		f.highDirty = 1
	}
	f.lowDirty = f.highDirty / 2

	var jbytes int64
	switch cfg.Journal {
	case NoJournal:
	case OrderedJournal:
		jbytes = cfg.JournalBytes
		if jbytes <= 0 {
			jbytes = DefaultJournalBytes
		}
	case LogStructured:
		jbytes = cfg.JournalBytes
		if jbytes <= 0 {
			jbytes = DefaultLogBytes
		}
	default:
		panic(fmt.Sprintf("fs: unknown journal mode %d", int(cfg.Journal)))
	}
	if jbytes >= devBytes {
		panic("fs: journal area larger than the device")
	}
	f.exported = (devBytes - jbytes) / f.ps * f.ps
	if f.exported <= 0 {
		panic("fs: no exported capacity left under the journal area")
	}
	f.journalOff = f.exported
	f.journalLen = devBytes - f.exported

	f.gate = gate{dev: dev, serial: serialDev}
	f.cache = make(map[int64]*page)
	f.wbExtentFn = f.wbExtentDone
	f.expireFn = f.expireFire
	f.syncStepFn = f.syncAdvance
	f.cleanRdFn = f.cleanReadDone
	f.cleanWrFn = f.cleanWriteDone
	f.fillIssueFn = func(a any) {
		fl := a.(*fill)
		if fl.op != nil {
			f.pr.SetSpan(fl.op.span)
		}
		f.gate.submit(false, fl.idx*f.ps, int(f.ps), fl.fn)
	}
	if f.pr = probe.Get(eng); f.pr != nil {
		base := f.pr.Name("fs")
		f.wbTrack = base + "/writeback"
		f.clTrack = base + "/cleaner"
		f.gate.pr = f.pr
	}
	return f
}

// DirtyRatio reports the dirty fraction of the cache (0 when uncached);
// a time-series gauge for the sampler.
func (f *FS) DirtyRatio() float64 {
	if f.pages == 0 {
		return 0
	}
	return float64(f.nDirty) / float64(f.pages)
}

// CacheHitRate reports the cumulative hit fraction of read lookups.
func (f *FS) CacheHitRate() float64 {
	t := f.stats.Hits + f.stats.Misses
	if t == 0 {
		return 0
	}
	return float64(f.stats.Hits) / float64(t)
}

// ExportedBytes reports the host-visible capacity: the child's, minus
// the reserved journal/log area, page-aligned.
func (f *FS) ExportedBytes() int64 { return f.exported }

// PageSize reports the cache page size in bytes.
func (f *FS) PageSize() int64 { return f.ps }

// CachePages reports the cache capacity in pages (0: cache disabled).
func (f *FS) CachePages() int64 { return f.pages }

// Stats snapshots the layer's counters.
func (f *FS) Stats() Stats {
	s := f.stats
	s.DirtyPages = f.nDirty
	return s
}

func (f *FS) charge(fn cpu.Fn, c StageCost) {
	f.core.Charge(fn, c.Time, c.Loads, c.Stores)
}

func (f *FS) chargeN(fn cpu.Fn, c StageCost, n int64) {
	f.core.Charge(fn, c.Time*sim.Time(n), c.Loads*uint64(n), c.Stores*uint64(n))
}

// fsOp joins one host operation's outstanding pieces: the syscall-side
// delay plus any child I/Os it must wait for, plus a tail — the
// post-I/O host work (page insert, copy-to-user) that runs only after
// the block reads land. Pooled; fn is bound once.
type fsOp struct {
	f    *FS
	left int
	tail sim.Time
	done func()
	span *probe.Span
	fn   func()
	next *fsOp
}

func (f *FS) getOp(done func()) *fsOp {
	op := f.freeOps
	if op == nil {
		op = &fsOp{f: f}
		op.fn = func() { op.f.opStep(op) }
	} else {
		f.freeOps = op.next
		op.next = nil
	}
	op.left = 0
	op.tail = 0
	op.done = done
	return op
}

func (f *FS) opStep(op *fsOp) {
	op.left--
	if op.left > 0 {
		return
	}
	if op.tail > 0 {
		// Everything landed; the post-I/O host work runs now.
		t := op.tail
		op.tail = 0
		op.left = 1
		f.eng.After(t, op.fn)
		return
	}
	done := op.done
	op.done = nil
	op.span = nil
	op.next = f.freeOps
	f.freeOps = op
	done()
}

// fill is one in-flight page read destined for the cache (a read miss,
// a readahead, or a read-modify-write fill). Pooled; fn is bound once.
type fill struct {
	f     *FS
	idx   int64
	dirty bool // RMW: mark the filled page dirty
	op    *fsOp
	fn    func()
	next  *fill
}

func (f *FS) getFill(idx int64, dirty bool, op *fsOp) *fill {
	fl := f.freeFills
	if fl == nil {
		fl = &fill{f: f}
		fl.fn = func() { fl.f.fillDone(fl) }
	} else {
		f.freeFills = fl.next
		fl.next = nil
	}
	fl.idx = idx
	fl.dirty = dirty
	fl.op = op
	return fl
}
