package fs

import (
	"fmt"
	"testing"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// fakeDev is a deterministic Backend: fixed read/write/flush latencies,
// an op log for ordering assertions, and an optional serial guard.
type fakeDev struct {
	eng                         *sim.Engine
	readLat, writeLat, flushLat sim.Time
	serialGuard                 bool
	inflight                    int
	log                         []string
}

func (d *fakeDev) begin() {
	if d.serialGuard && d.inflight > 0 {
		panic("fakeDev: overlapping request on a serial backend")
	}
	d.inflight++
}

func (d *fakeDev) end(done func()) func() {
	return func() {
		d.inflight--
		done()
	}
}

func (d *fakeDev) Submit(write bool, off int64, n int, done func()) {
	d.begin()
	op, lat := "R", d.readLat
	if write {
		op, lat = "W", d.writeLat
	}
	d.log = append(d.log, fmt.Sprintf("%s %d+%d", op, off, n))
	d.eng.After(lat, d.end(done))
}

func (d *fakeDev) Flush(done func()) {
	d.begin()
	d.log = append(d.log, "F")
	d.eng.After(d.flushLat, d.end(done))
}

const testDevBytes = 1 << 20 // 1MiB fake device

func newTestFS(t *testing.T, cfg Config, serial bool) (*FS, *fakeDev, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	dev := &fakeDev{
		eng:         eng,
		readLat:     10 * sim.Microsecond,
		writeLat:    12 * sim.Microsecond,
		flushLat:    50 * sim.Microsecond,
		serialGuard: serial,
	}
	f := New(eng, cpu.NewCore(), dev, testDevBytes, serial, cfg)
	return f, dev, eng
}

func TestPassthroughConfig(t *testing.T) {
	if !(Config{}).Passthrough() {
		t.Error("zero config must be a passthrough")
	}
	if (Config{CacheBytes: 1 << 20}).Passthrough() {
		t.Error("cache enabled is not a passthrough")
	}
	if (Config{Journal: OrderedJournal}).Passthrough() {
		t.Error("journaled fsync is not a passthrough")
	}
}

func TestJournalModeString(t *testing.T) {
	for m, want := range map[JournalMode]string{
		NoJournal: "none", OrderedJournal: "ordered", LogStructured: "log",
		JournalMode(9): "JournalMode(9)",
	} {
		if got := m.String(); got != want {
			t.Errorf("JournalMode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestExportedReservesJournalArea(t *testing.T) {
	f, _, _ := newTestFS(t, Config{CacheBytes: 64 << 10}, false)
	if f.ExportedBytes() != testDevBytes {
		t.Errorf("no-journal exported = %d, want %d", f.ExportedBytes(), testDevBytes)
	}
	f2, _, _ := newTestFS(t, Config{CacheBytes: 64 << 10, Journal: OrderedJournal, JournalBytes: 128 << 10}, false)
	if want := int64(testDevBytes - 128<<10); f2.ExportedBytes() != want {
		t.Errorf("ordered exported = %d, want %d", f2.ExportedBytes(), want)
	}
}

// TestReadHitMiss pins the cache contract: the first read of a page
// misses (one child page read + insert), the second hits and completes
// in pure host-software time with no child I/O.
func TestReadHitMiss(t *testing.T) {
	f, dev, eng := newTestFS(t, Config{CacheBytes: 64 << 10}, false)
	var t1, t2 sim.Time
	f.Submit(false, 4096, 4096, func() { t1 = eng.Now() })
	eng.Run()
	if len(dev.log) != 1 || dev.log[0] != "R 4096+4096" {
		t.Fatalf("miss did not read the page: %v", dev.log)
	}
	start := eng.Now()
	f.Submit(false, 4096, 4096, func() { t2 = eng.Now() - start })
	eng.Run()
	if len(dev.log) != 1 {
		t.Fatalf("hit touched the device: %v", dev.log)
	}
	c := DefaultCosts()
	wantHit := c.Syscall.Time + c.Lookup.Time + c.CopyPerPage.Time
	if t2 != wantHit {
		t.Errorf("hit latency = %v, want %v (syscall+lookup+copy)", t2, wantHit)
	}
	if t1 <= t2 {
		t.Errorf("miss (%v) not slower than hit (%v)", t1, t2)
	}
	s := f.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserted != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 insert", s)
	}
}

// TestBufferedWriteAbsorbed: a full-page buffered write completes in
// memcpy time, touches no device, and leaves the page dirty.
func TestBufferedWriteAbsorbed(t *testing.T) {
	f, dev, eng := newTestFS(t, Config{CacheBytes: 64 << 10, DirtyExpire: -1}, false)
	done := false
	f.Submit(true, 0, 4096, func() { done = true })
	end := eng.Run()
	if !done {
		t.Fatal("write never completed")
	}
	if len(dev.log) != 0 {
		t.Fatalf("absorbed write touched the device: %v", dev.log)
	}
	c := DefaultCosts()
	want := c.Syscall.Time + c.Lookup.Time + c.CopyPerPage.Time + c.Insert.Time
	if end != want {
		t.Errorf("buffered write latency = %v, want %v", end, want)
	}
	if s := f.Stats(); s.DirtyPages != 1 {
		t.Errorf("dirty pages = %d, want 1", s.DirtyPages)
	}
}

// TestPartialWriteReadsFirst: a sub-page write to an uncached page
// read-modify-writes — the child read happens before completion.
func TestPartialWriteReadsFirst(t *testing.T) {
	f, dev, eng := newTestFS(t, Config{CacheBytes: 64 << 10, DirtyExpire: -1}, false)
	f.Submit(true, 512, 1024, func() {})
	eng.Run()
	if len(dev.log) != 1 || dev.log[0] != "R 0+4096" {
		t.Fatalf("partial write did not RMW: %v", dev.log)
	}
	if s := f.Stats(); s.RMWReads != 1 || s.DirtyPages != 1 {
		t.Errorf("stats = %+v, want 1 RMW read and 1 dirty page", s)
	}
}

// TestWritebackThresholdAndCoalescing: crossing the dirty high
// watermark starts the background flusher, which coalesces adjacent
// dirty pages into fewer, larger child writes and drains to the low
// watermark.
func TestWritebackThresholdAndCoalescing(t *testing.T) {
	// 16-page cache, high watermark at 8 pages, batch 8.
	f, dev, eng := newTestFS(t, Config{
		CacheBytes: 16 * 4096, DirtyRatio: 0.5, WritebackBatch: 8,
		DirtyExpire: -1,
	}, false)
	for i := 0; i < 7; i++ {
		f.Submit(true, int64(i)*4096, 4096, func() {})
	}
	eng.Run()
	if len(dev.log) != 0 {
		t.Fatalf("flusher ran below the watermark: %v", dev.log)
	}
	f.Submit(true, 7*4096, 4096, func() {})
	eng.Run()
	s := f.Stats()
	if s.WritebackPages != 8 {
		t.Fatalf("writeback pages = %d, want 8", s.WritebackPages)
	}
	// All 8 pages are adjacent: one coalesced 32KiB write.
	if s.WritebackWrites != 1 || len(dev.log) != 1 || dev.log[0] != "W 0+32768" {
		t.Fatalf("coalescing broken: writes=%d log=%v", s.WritebackWrites, dev.log)
	}
	if s.DirtyPages != 0 {
		t.Errorf("dirty pages after drain = %d, want 0", s.DirtyPages)
	}
}

// TestDirtyExpire: a lone dirty page is written back once it ages past
// DirtyExpire even though the ratio never trips.
func TestDirtyExpire(t *testing.T) {
	f, dev, eng := newTestFS(t, Config{
		CacheBytes: 64 << 10, DirtyExpire: 1 * sim.Millisecond,
	}, false)
	f.Submit(true, 0, 4096, func() {})
	end := eng.Run()
	if len(dev.log) != 1 {
		t.Fatalf("expired page not written back: %v", dev.log)
	}
	if end < 1*sim.Millisecond {
		t.Errorf("writeback at %v, before the 1ms age threshold", end)
	}
	if s := f.Stats(); s.DirtyPages != 0 {
		t.Errorf("dirty pages = %d, want 0", s.DirtyPages)
	}
}

// syncOrder runs a buffered write + fsync under the given mode and
// returns the child op log.
func syncOrder(t *testing.T, mode JournalMode) ([]string, Stats) {
	t.Helper()
	f, dev, eng := newTestFS(t, Config{
		CacheBytes: 64 << 10, Journal: mode, JournalBytes: 256 << 10,
		DirtyExpire: -1,
	}, false)
	f.Submit(true, 0, 4096, func() {})
	eng.Run()
	synced := false
	f.Sync(func() { synced = true })
	eng.Run()
	if !synced {
		t.Fatalf("%v fsync never completed", mode)
	}
	return dev.log, f.Stats()
}

// TestFsyncNoJournal: writeback then exactly one barrier.
func TestFsyncNoJournal(t *testing.T) {
	log, s := syncOrder(t, NoJournal)
	want := []string{"W 0+4096", "F"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("op order = %v, want %v", log, want)
	}
	if s.Barriers != 1 || s.JournalWrites != 0 {
		t.Errorf("stats = %+v, want 1 barrier, 0 journal writes", s)
	}
}

// TestFsyncOrdered pins the ext4 data=ordered sequence: data writeback,
// journal record, barrier, commit record, second barrier.
func TestFsyncOrdered(t *testing.T) {
	log, s := syncOrder(t, OrderedJournal)
	exported := int64(testDevBytes - 256<<10)
	want := []string{
		"W 0+4096",
		fmt.Sprintf("W %d+4096", exported),
		"F",
		fmt.Sprintf("W %d+4096", exported+4096),
		"F",
	}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("op order = %v, want %v", log, want)
	}
	if s.Barriers != 2 || s.JournalWrites != 2 {
		t.Errorf("stats = %+v, want 2 barriers, 2 journal writes", s)
	}
}

// TestFsyncLogStructured: node append then one barrier.
func TestFsyncLogStructured(t *testing.T) {
	log, s := syncOrder(t, LogStructured)
	exported := int64(testDevBytes - 256<<10)
	want := []string{
		"W 0+4096",
		fmt.Sprintf("W %d+4096", exported),
		"F",
	}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("op order = %v, want %v", log, want)
	}
	if s.Barriers != 1 || s.JournalWrites != 1 {
		t.Errorf("stats = %+v, want 1 barrier, 1 journal write", s)
	}
}

// TestLogCleaningUnderPressure: tiny segments and high utilization make
// appends owe cleaning work, and the cleaner's copies show up as child
// traffic before the fsync barrier lands.
func TestLogCleaningUnderPressure(t *testing.T) {
	f, dev, eng := newTestFS(t, Config{
		CacheBytes: 256 << 10, Journal: LogStructured,
		JournalBytes: 256 << 10, SegmentBytes: 16 << 10, LogUtilization: 0.5,
		DirtyRatio: 0.9, DirtyExpire: -1,
	}, false)
	// Dirty 32 pages (128KiB) — 8 segments of appends at writeback time.
	for i := 0; i < 32; i++ {
		f.Submit(true, int64(i)*4096, 4096, func() {})
	}
	eng.Run()
	synced := false
	f.Sync(func() { synced = true })
	eng.Run()
	if !synced {
		t.Fatal("fsync never completed")
	}
	s := f.Stats()
	if s.SegsCleaned == 0 || s.CleanedBytes == 0 {
		t.Fatalf("no cleaning under pressure: %+v", s)
	}
	// The barrier must be the last child op: cleaning completed first.
	if dev.log[len(dev.log)-1] != "F" {
		t.Errorf("barrier not last: %v", dev.log[len(dev.log)-5:])
	}
}

// TestSerialGate: over a strictly serial child every FS-generated I/O
// (misses, writeback, journal, barriers) is serialized; the guard
// panics on overlap.
func TestSerialGate(t *testing.T) {
	f, _, eng := newTestFS(t, Config{
		CacheBytes: 32 << 10, Journal: OrderedJournal, JournalBytes: 64 << 10,
		DirtyRatio: 0.3, DirtyExpire: -1,
	}, true)
	// Concurrent misses on distinct pages.
	for i := 0; i < 4; i++ {
		f.Submit(false, int64(i)*4096, 4096, func() {})
	}
	// Concurrent buffered writes that trip the flusher.
	for i := 4; i < 8; i++ {
		f.Submit(true, int64(i)*4096, 4096, func() {})
	}
	synced := false
	f.Sync(func() { synced = true })
	eng.Run()
	if !synced {
		t.Fatal("fsync never completed")
	}
}

// TestReadahead: a sequential stream prefetches ahead, and the
// prefetched pages serve later reads from the cache.
func TestReadahead(t *testing.T) {
	f, dev, eng := newTestFS(t, Config{CacheBytes: 256 << 10, ReadaheadPages: 8}, false)
	for i := 0; i < 4; i++ {
		f.Submit(false, int64(i)*4096, 4096, func() {})
		eng.Run()
	}
	s := f.Stats()
	if s.Readaheads == 0 {
		t.Fatalf("sequential stream prefetched nothing: %+v", s)
	}
	n := len(dev.log)
	f.Submit(false, 4*4096, 4096, func() {})
	eng.Run()
	// The read itself must be a hit (prefetched); extending the
	// readahead window may legitimately add new prefetch reads.
	for _, op := range dev.log[n:] {
		if op == "R 16384+4096" {
			t.Errorf("read of a prefetched page touched the device: %v", dev.log[n:])
		}
	}
	if f.Stats().Hits == 0 {
		t.Error("prefetched page did not hit")
	}
}

// TestEvictionLRU: a cache at capacity evicts the coldest clean page.
func TestEvictionLRU(t *testing.T) {
	f, _, eng := newTestFS(t, Config{CacheBytes: 4 * 4096}, false)
	for i := 0; i < 4; i++ {
		f.Submit(false, int64(i)*4096, 4096, func() {})
		eng.Run()
	}
	// Touch page 0 so page 1 is coldest, then fault page 4.
	f.Submit(false, 0, 4096, func() {})
	eng.Run()
	f.Submit(false, 4*4096, 4096, func() {})
	eng.Run()
	if s := f.Stats(); s.Evicted != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evicted)
	}
	// Page 0 must still hit; page 1 must miss.
	h := f.Stats().Hits
	f.Submit(false, 0, 4096, func() {})
	eng.Run()
	if f.Stats().Hits != h+1 {
		t.Error("recently touched page was evicted")
	}
	m := f.Stats().Misses
	f.Submit(false, 1*4096, 4096, func() {})
	eng.Run()
	if f.Stats().Misses != m+1 {
		t.Error("coldest page survived eviction")
	}
}

// TestNoCacheDirectPassthrough: CacheBytes 0 with a journal still
// passes data I/O straight through (O_DIRECT), while fsync runs the
// commit protocol.
func TestNoCacheDirectPassthrough(t *testing.T) {
	f, dev, eng := newTestFS(t, Config{Journal: OrderedJournal, JournalBytes: 64 << 10}, false)
	f.Submit(true, 0, 4096, func() {})
	eng.Run()
	if len(dev.log) != 1 || dev.log[0] != "W 0+4096" {
		t.Fatalf("direct write altered: %v", dev.log)
	}
	f.Sync(func() {})
	eng.Run()
	if s := f.Stats(); s.Barriers != 2 || s.JournalWrites != 2 {
		t.Errorf("journaled fsync without cache: %+v", s)
	}
}

// TestConcurrentSyncsSerialize: overlapping Sync calls queue and each
// completes.
func TestConcurrentSyncsSerialize(t *testing.T) {
	f, _, eng := newTestFS(t, Config{
		CacheBytes: 64 << 10, Journal: OrderedJournal, JournalBytes: 64 << 10,
	}, false)
	f.Submit(true, 0, 4096, func() {})
	completed := 0
	f.Sync(func() { completed++ })
	f.Sync(func() { completed++ })
	eng.Run()
	if completed != 2 {
		t.Fatalf("completed = %d, want 2", completed)
	}
	if s := f.Stats(); s.Fsyncs != 2 || s.Barriers != 4 {
		t.Errorf("stats = %+v, want 2 fsyncs and 4 barriers", s)
	}
}

// TestDeterminism: an identical op sequence produces identical stats
// and identical virtual end time.
func TestDeterminism(t *testing.T) {
	runOnce := func() (Stats, sim.Time) {
		f, _, eng := newTestFS(t, Config{
			CacheBytes: 32 << 10, Journal: LogStructured, JournalBytes: 128 << 10,
			SegmentBytes: 16 << 10, ReadaheadPages: 4, DirtyRatio: 0.3,
		}, false)
		for i := 0; i < 24; i++ {
			f.Submit(i%3 != 0, int64(i%12)*4096, 4096, func() {})
			if i%8 == 7 {
				f.Sync(func() {})
			}
		}
		end := eng.Run()
		return f.Stats(), end
	}
	s1, e1 := runOnce()
	s2, e2 := runOnce()
	if s1 != s2 || e1 != e2 {
		t.Fatalf("nondeterministic: %+v @%v vs %+v @%v", s1, e1, s2, e2)
	}
}

// TestReadaheadNewStreamResets: the covered-window mark belongs to one
// stream — a second sequential stream at lower offsets must prefetch
// again rather than being clamped by the first stream's window.
func TestReadaheadNewStreamResets(t *testing.T) {
	f, _, eng := newTestFS(t, Config{CacheBytes: 512 << 10, ReadaheadPages: 8}, false)
	// Stream A, high offsets: establishes a readahead window up there.
	for i := 0; i < 4; i++ {
		f.Submit(false, int64(64+i)*4096, 4096, func() {})
		eng.Run()
	}
	ra := f.Stats().Readaheads
	if ra == 0 {
		t.Fatal("stream A never prefetched")
	}
	// Stream B, from the start: must prefetch on its own.
	for i := 0; i < 4; i++ {
		f.Submit(false, int64(i)*4096, 4096, func() {})
		eng.Run()
	}
	if f.Stats().Readaheads <= ra {
		t.Fatalf("stream B never prefetched (stuck at %d readaheads)", ra)
	}
}
