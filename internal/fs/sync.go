// Write-back and durability: the background flusher (dirty-ratio and
// age triggered, with write coalescing), the fsync state machine, the
// three journal commit protocols, and the log-structured segment
// cleaner. All child I/O issued here contends with foreground traffic
// on the same stack and device — which is the experiment: on a ULL
// device the barriers and commit writes, not the media, dominate fsync.
package fs

import (
	"sort"

	"repro/internal/cpu"
	"repro/internal/probe"
	"repro/internal/sim"
)

func (f *FS) writebackBatchSize() int {
	if f.cfg.WritebackBatch > 0 {
		return f.cfg.WritebackBatch
	}
	return DefaultWritebackBatch
}

func (f *FS) expireAfter() sim.Time {
	if f.cfg.DirtyExpire != 0 {
		return f.cfg.DirtyExpire
	}
	return DefaultDirtyExpire
}

func (f *FS) commitBytes() int {
	if f.cfg.CommitBytes > 0 {
		return f.cfg.CommitBytes
	}
	return DefaultCommitBytes
}

func (f *FS) segmentBytes() int64 {
	if f.cfg.SegmentBytes > 0 {
		return f.cfg.SegmentBytes
	}
	return DefaultSegmentBytes
}

func (f *FS) logUtil() float64 {
	u := f.cfg.LogUtilization
	if u == 0 {
		u = DefaultLogUtilization
	}
	if u < 0 {
		u = 0
	}
	// A cleaner at utilization 1 regenerates its own debt forever; cap
	// below the fixed point.
	if u > 0.95 {
		u = 0.95
	}
	return u
}

// --- background write-back ---

// maybeWriteback starts a background pass once the dirty pool crosses
// the high watermark. During an fsync the sync machinery owns
// writeback.
func (f *FS) maybeWriteback() {
	if f.wbActive || f.syncActive || f.nDirty < f.highDirty {
		return
	}
	f.startWritebackBatch()
}

// startWritebackBatch takes up to WritebackBatch oldest dirty pages,
// coalesces adjacent ones into single child writes, and issues them.
func (f *FS) startWritebackBatch() {
	limit := f.writebackBatchSize()
	f.wbPages = f.wbPages[:0]
	for len(f.wbPages) < limit && f.dirtyHead != nil {
		pg := f.dirtyPop()
		pg.writing = true
		f.wbPages = append(f.wbPages, pg)
	}
	if len(f.wbPages) == 0 {
		return
	}
	f.wbActive = true
	f.wbStart = f.eng.Now()
	f.stats.WritebackPages += uint64(len(f.wbPages))
	// Dirty order approximates write order; sorting by page index turns
	// neighboring dirtied pages into sequential extents. sort.Sort on a
	// pointer receiver (not sort.Slice) keeps the steady-state fsync path
	// allocation-free.
	f.wbSort.pages = f.wbPages
	sort.Sort(&f.wbSort)
	f.wbSort.pages = nil
	f.wbLeft = 0
	start, n := f.wbPages[0].idx, int64(1)
	for _, pg := range f.wbPages[1:] {
		if pg.idx == start+n {
			n++
			continue
		}
		f.flushExtent(start, n)
		start, n = pg.idx, 1
	}
	f.flushExtent(start, n)
}

// flushExtent issues one coalesced write-back extent to the child.
func (f *FS) flushExtent(startIdx, pages int64) {
	f.wbLeft++
	f.stats.WritebackWrites++
	bytes := pages * f.ps
	if f.cfg.Journal == LogStructured {
		f.noteLogBytes(bytes)
	}
	f.gate.submit(true, startIdx*f.ps, int(bytes), f.wbExtentFn)
}

// wbSorter orders a write-back batch by page index; a persistent
// sort.Interface field avoids the per-batch closure and interface
// allocations of sort.Slice.
type wbSorter struct{ pages []*page }

func (s *wbSorter) Len() int           { return len(s.pages) }
func (s *wbSorter) Less(i, j int) bool { return s.pages[i].idx < s.pages[j].idx }
func (s *wbSorter) Swap(i, j int)      { s.pages[i], s.pages[j] = s.pages[j], s.pages[i] }

func (f *FS) wbExtentDone() {
	f.wbLeft--
	if f.wbLeft == 0 {
		f.finishWritebackBatch()
	}
}

func (f *FS) finishWritebackBatch() {
	now := f.eng.Now()
	f.pr.Emit(f.wbTrack, "writeback", f.wbStart, now-f.wbStart)
	for _, pg := range f.wbPages {
		pg.writing = false
		if pg.redirty {
			// The host rewrote the page mid-flight: still dirty, fresh age.
			pg.redirty = false
			pg.dirtyAt = now
			f.dirtyAppend(pg)
		} else {
			pg.dirty = false
			f.nDirty--
			f.cleanPush(pg)
		}
	}
	f.wbPages = f.wbPages[:0]
	f.wbActive = false
	if f.syncActive && f.syncStage < 0 {
		f.syncData()
		return
	}
	if f.syncActive {
		return
	}
	if f.nDirty > f.lowDirty {
		f.startWritebackBatch()
		return
	}
	if f.dirtyHead != nil && now-f.dirtyHead.dirtyAt >= f.expireAfter() {
		f.startWritebackBatch()
		return
	}
	f.armExpire()
}

// armExpire schedules the age-based flush for the oldest dirty page.
func (f *FS) armExpire() {
	if f.cfg.DirtyExpire < 0 || f.expireArmed || f.wbActive || f.syncActive || f.dirtyHead == nil {
		return
	}
	f.expireArmed = true
	at := f.dirtyHead.dirtyAt + f.expireAfter()
	if now := f.eng.Now(); at < now {
		at = now
	}
	f.eng.At(at, f.expireFn)
}

func (f *FS) expireFire() {
	f.expireArmed = false
	if f.wbActive || f.syncActive || f.dirtyHead == nil {
		return
	}
	if f.eng.Now()-f.dirtyHead.dirtyAt >= f.expireAfter() {
		f.startWritebackBatch()
	} else {
		f.armExpire()
	}
}

// --- fsync ---

// Sync runs fsync(2): write back every dirty page, then commit under
// the configured journal mode, then barrier the device. Concurrent
// syncs queue and run one at a time.
//
//ullvet:noalloc bench=BenchmarkFSFsync
func (f *FS) Sync(done func()) {
	f.stats.Fsyncs++
	f.charge(cpu.FnSyscall, f.costs.Syscall)
	f.charge(cpu.FnExt4, f.costs.FsyncCall)
	if f.pr != nil {
		// One slot per queued sync, nil spans included, so the head of
		// this FIFO is always the active sync's span.
		f.syncSpans = append(f.syncSpans, f.pr.TakeSpan())
	}
	f.syncQ.Push(done)
	if f.syncActive {
		return
	}
	f.syncActive = true
	f.syncStage = -1
	f.syncData()
}

// syncData is the data phase: drain the dirty pool (a running
// background batch is awaited first — its completion re-enters here),
// then advance to the commit protocol.
func (f *FS) syncData() {
	if f.wbActive {
		return
	}
	if f.nDirty > 0 {
		f.startWritebackBatch()
		return
	}
	f.syncStage = 0
	f.syncAdvance()
}

// syncAdvance steps the commit protocol; each child I/O or barrier
// completion calls it again.
//
//ullvet:noalloc bench=BenchmarkFSFsync
func (f *FS) syncAdvance() {
	// Phase-attribute the active sync's span at each protocol edge: stage
	// 0 means the data drain just finished (writeback), later stages mean
	// the commit write or barrier that ran before them finished.
	sp := f.syncHeadSpan()
	now := f.eng.Now()
	switch f.cfg.Journal {
	case NoJournal:
		switch f.syncStage {
		case 0:
			sp.To(probe.PWriteback, now)
			f.syncStage = 1
			f.barrier(f.syncStepFn)
		default:
			sp.To(probe.PBarrier, now)
			f.syncFinish()
		}
	case OrderedJournal:
		// ext4 data=ordered: data is already down (the data phase), so
		// journal the metadata, barrier, write the commit record, and
		// barrier again so the commit is durable.
		switch f.syncStage {
		case 0:
			sp.To(probe.PWriteback, now)
			f.charge(cpu.FnExt4, f.costs.JournalPrep)
			f.syncStage = 1
			f.jwrite(f.commitBytes(), f.syncStepFn)
		case 1:
			sp.To(probe.PJournal, now)
			f.syncStage = 2
			f.barrier(f.syncStepFn)
		case 2:
			sp.To(probe.PBarrier, now)
			f.syncStage = 3
			f.jwrite(f.commitBytes(), f.syncStepFn)
		case 3:
			sp.To(probe.PJournal, now)
			f.syncStage = 4
			f.barrier(f.syncStepFn)
		default:
			sp.To(probe.PBarrier, now)
			f.syncFinish()
		}
	default: // LogStructured
		// F2FS shape: append the node block, wait out any segment
		// cleaning the append forced, one barrier.
		switch f.syncStage {
		case 0:
			sp.To(probe.PWriteback, now)
			f.charge(cpu.FnExt4, f.costs.JournalPrep)
			f.syncStage = 1
			f.logAppend(f.commitBytes(), f.syncStepFn)
		case 1:
			// Covers the node append and, on re-entry after a forced
			// cleaning wait, the wait itself.
			sp.To(probe.PJournal, now)
			if f.cleaning {
				f.syncWaitClean = true
				return
			}
			f.syncStage = 2
			f.barrier(f.syncStepFn)
		default:
			sp.To(probe.PBarrier, now)
			f.syncFinish()
		}
	}
}

// syncHeadSpan returns the active sync's span (nil when observability is
// off or the span was not carried in).
func (f *FS) syncHeadSpan() *probe.Span {
	if f.pr == nil || len(f.syncSpans) == 0 {
		return nil
	}
	return f.syncSpans[0]
}

func (f *FS) syncFinish() {
	if f.pr != nil && len(f.syncSpans) > 0 {
		copy(f.syncSpans, f.syncSpans[1:])
		f.syncSpans = f.syncSpans[:len(f.syncSpans)-1]
	}
	done := f.syncQ.Pop()
	if f.syncQ.Len() > 0 {
		done()
		f.syncStage = -1
		f.syncData()
		return
	}
	f.syncActive = false
	done()
	f.maybeWriteback()
	f.armExpire()
}

// --- journal / log plumbing ---

// jalloc carves n bytes out of the reserved journal/log area, wrapping
// at the end.
func (f *FS) jalloc(n int) int64 {
	if f.jcursor+int64(n) > f.journalLen {
		f.jcursor = 0
	}
	off := f.journalOff + f.jcursor
	f.jcursor += int64(n)
	return off
}

// jwrite writes one journal record.
func (f *FS) jwrite(n int, cb func()) {
	f.stats.JournalWrites++
	f.gate.submit(true, f.jalloc(n), n, cb)
}

// logAppend writes one node/metadata block into the log and accounts
// the appended bytes toward segment consumption.
func (f *FS) logAppend(n int, cb func()) {
	f.stats.JournalWrites++
	off := f.jalloc(n)
	f.gate.submit(true, off, n, cb)
	f.noteLogBytes(int64(n))
}

// barrier issues one device flush through the child stack.
func (f *FS) barrier(cb func()) {
	f.stats.Barriers++
	f.gate.flush(cb)
}

// --- log-structured segment cleaning ---

// noteLogBytes accounts appended bytes; every filled segment owes the
// cleaner its live fraction — at utilization u, reclaiming a segment
// copies u of it, and the copies are appends that consume log space in
// turn (the classic LFS cleaning amplification).
func (f *FS) noteLogBytes(n int64) {
	f.logBytes += n
	seg := f.segmentBytes()
	live := int64(f.logUtil() * float64(seg))
	for f.logBytes >= (f.segFilled+1)*seg {
		f.segFilled++
		f.cleanDebt += live
	}
	if f.cleanDebt > 0 && !f.cleaning {
		f.cleaning = true
		f.cleanStep()
	}
}

// cleanStep moves one chunk of live data: read it from the victim
// segment, append it at the log head. One chunk is in flight at a time;
// the traffic contends with everything else on the child.
func (f *FS) cleanStep() {
	if f.cleanDebt <= 0 {
		f.cleaning = false
		if f.syncWaitClean {
			f.syncWaitClean = false
			f.syncAdvance()
		}
		return
	}
	n := int64(cleanChunk)
	if n > f.cleanDebt {
		n = f.cleanDebt
	}
	f.cleanChunkN = int(n)
	if f.cleanCursor+n > f.journalLen {
		f.cleanCursor = 0
	}
	off := f.journalOff + f.cleanCursor
	f.cleanCursor += n
	f.clStart = f.eng.Now()
	f.gate.submit(false, off, int(n), f.cleanRdFn)
}

func (f *FS) cleanReadDone() {
	f.gate.submit(true, f.jalloc(f.cleanChunkN), f.cleanChunkN, f.cleanWrFn)
}

func (f *FS) cleanWriteDone() {
	f.pr.Emit(f.clTrack, "clean", f.clStart, f.eng.Now()-f.clStart)
	n := int64(f.cleanChunkN)
	f.cleanDebt -= n
	f.stats.CleanedBytes += n
	// A segment counts as reclaimed once its live share has actually
	// been copied out, not when the debt was incurred.
	f.cleanedAcc += n
	if live := int64(f.logUtil() * float64(f.segmentBytes())); live > 0 {
		for f.cleanedAcc >= live {
			f.cleanedAcc -= live
			f.stats.SegsCleaned++
		}
	}
	// The cleaner's own appends consume log space too.
	f.noteLogBytes(n)
	f.cleanStep()
}
