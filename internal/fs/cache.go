// The page cache: mapped pages, the clean LRU, the buffered read and
// write paths, and readahead. The hit path is allocation-free — a map
// lookup, list relinks, CPU charges, and one pooled engine event — so
// cache-resident workloads measure the modeled copy cost, not the
// simulator's.
package fs

import (
	"repro/internal/cpu"
	"repro/internal/probe"
	"repro/internal/sim"
)

// page is one cache page. Clean, idle pages sit on the clean LRU
// (prev/next) and are the only eviction candidates; dirty pages queue
// on the dirty FIFO (dnext) in first-dirtied order; pages under
// writeback are on neither list.
type page struct {
	idx        int64
	dirty      bool
	writing    bool // writeback in flight
	redirty    bool // dirtied again while writing
	dirtyAt    sim.Time
	prev, next *page // clean-LRU links
	dnext      *page // dirty-FIFO link
}

// --- clean-LRU list (head = most recent, evict from tail) ---

func (f *FS) cleanPush(pg *page) {
	pg.prev = nil
	pg.next = f.cleanHead
	if f.cleanHead != nil {
		f.cleanHead.prev = pg
	}
	f.cleanHead = pg
	if f.cleanTail == nil {
		f.cleanTail = pg
	}
}

func (f *FS) cleanUnlink(pg *page) {
	if pg.prev != nil {
		pg.prev.next = pg.next
	} else {
		f.cleanHead = pg.next
	}
	if pg.next != nil {
		pg.next.prev = pg.prev
	} else {
		f.cleanTail = pg.prev
	}
	pg.prev, pg.next = nil, nil
}

// touch moves a hit page to the LRU head (dirty and writing pages are
// not on the clean list, so only clean pages move).
func (f *FS) touch(pg *page) {
	if pg.dirty || pg.writing || f.cleanHead == pg {
		return
	}
	f.cleanUnlink(pg)
	f.cleanPush(pg)
}

// --- dirty FIFO (head = oldest) ---

func (f *FS) dirtyAppend(pg *page) {
	pg.dnext = nil
	if f.dirtyTail != nil {
		f.dirtyTail.dnext = pg
	} else {
		f.dirtyHead = pg
	}
	f.dirtyTail = pg
}

func (f *FS) dirtyPop() *page {
	pg := f.dirtyHead
	f.dirtyHead = pg.dnext
	if f.dirtyHead == nil {
		f.dirtyTail = nil
	}
	pg.dnext = nil
	return pg
}

// markDirty moves a cached page into the dirty pool.
func (f *FS) markDirty(pg *page, now sim.Time) {
	if pg.writing {
		pg.redirty = true
		return
	}
	if pg.dirty {
		return // keeps its original age
	}
	f.cleanUnlink(pg)
	pg.dirty = true
	pg.dirtyAt = now
	f.nDirty++
	f.dirtyAppend(pg)
	f.armExpire()
}

// insertPage maps idx to a cache page, evicting the coldest clean page
// when the cache is full. Returns nil when nothing is evictable (every
// page dirty or under writeback) — the caller falls back to bypassing
// the cache.
func (f *FS) insertPage(idx int64) *page {
	var pg *page
	if f.nCached < f.pages {
		// Pages are never freed once allocated — eviction reuses them in
		// place — so growth up to capacity is a plain allocation.
		pg = &page{}
		f.nCached++
	} else {
		pg = f.cleanTail
		if pg == nil {
			return nil
		}
		f.cleanUnlink(pg)
		delete(f.cache, pg.idx)
		f.stats.Evicted++
	}
	pg.idx = idx
	pg.dirty, pg.writing, pg.redirty = false, false, false
	f.cache[idx] = pg
	f.cleanPush(pg)
	f.stats.Inserted++
	return pg
}

// fillDone lands one page read: insert it (clean or dirty), settle the
// joined host op if any, and recycle the fill.
func (f *FS) fillDone(fl *fill) {
	op, dirty := fl.op, fl.dirty
	if op != nil {
		// The fill's device trip is already phase-attributed downstream;
		// this edge labels the delivery back into the cache layer.
		if dirty {
			op.span.To(probe.PRMW, f.eng.Now())
		} else {
			op.span.To(probe.PCacheMiss, f.eng.Now())
		}
	}
	pg := f.cache[fl.idx]
	if pg == nil {
		pg = f.insertPage(fl.idx)
		if pg == nil {
			f.stats.InsertSkips++
		} else {
			f.chargeN(cpu.FnVFS, f.costs.Insert, 1)
		}
	}
	if dirty {
		if pg != nil {
			f.markDirty(pg, f.eng.Now())
		} else if op != nil {
			// The modified page has nowhere to live: push it straight
			// down instead of losing the write.
			f.stats.WriteThrough++
			op.left++
			f.pr.SetSpan(op.span)
			f.gate.submit(true, fl.idx*f.ps, int(f.ps), op.fn)
		}
	}
	fl.op = nil
	fl.next = f.freeFills
	f.freeFills = fl
	if op != nil {
		f.opStep(op)
	}
	if dirty {
		f.maybeWriteback()
	}
}

// Submit is the Target entry point: the buffered I/O path.
//
//ullvet:noalloc bench=BenchmarkFSBufferedRead
func (f *FS) Submit(write bool, offset int64, length int, done func()) {
	if write {
		f.write(offset, length, done)
	} else {
		f.read(offset, length, done)
	}
}

// read serves one buffered read. Hits pay lookup + copy inline; a miss
// serializes the way the real path does — syscall + lookup, then the
// block read, then insert + copy-to-user — so the filesystem's fixed
// host bill lands on top of the device latency, not beside it.
func (f *FS) read(offset int64, length int, done func()) {
	f.stats.Reads++
	sp := f.pr.TakeSpan()
	if f.pages == 0 {
		// No cache: O_DIRECT semantics, straight through.
		f.pr.SetSpan(sp)
		f.gate.submit(false, offset, length, done)
		return
	}
	first, last := offset/f.ps, (offset+int64(length)-1)/f.ps
	n := last - first + 1
	f.stats.PagesRead += uint64(n)
	f.charge(cpu.FnSyscall, f.costs.Syscall)
	f.chargeN(cpu.FnVFS, f.costs.Lookup, n)
	f.chargeN(cpu.FnVFS, f.costs.CopyPerPage, n)
	pre := f.costs.Syscall.Time + f.costs.Lookup.Time*sim.Time(n)

	var op *fsOp
	delay := pre
	for idx := first; idx <= last; idx++ {
		if pg := f.cache[idx]; pg != nil {
			f.stats.Hits++
			f.touch(pg)
			delay += f.costs.CopyPerPage.Time
			continue
		}
		f.stats.Misses++
		if op == nil {
			op = f.getOp(done)
			op.span = sp
		}
		op.left++
		op.tail += f.costs.Insert.Time + f.costs.CopyPerPage.Time
		// The block read issues only after the syscall-side walk.
		f.eng.AfterArg(pre, f.fillIssueFn, f.getFill(idx, false, op))
	}
	f.readahead(offset, length)
	if op == nil {
		sp.Tail(probe.PCacheHit)
		f.eng.After(delay, done) // pure hit: nothing allocated
		return
	}
	op.left++ // the hit-side work joins the child reads
	f.eng.After(delay, op.fn)
}

// readahead detects a sequential stream (two back-to-back extents) and
// prefetches the next ReadaheadPages pages in the background. Prefetched
// pages become visible when their reads land; a read arriving earlier
// misses and issues its own fill — conservative, like a real window
// still in flight.
func (f *FS) readahead(offset int64, length int) {
	if f.cfg.ReadaheadPages <= 0 {
		return
	}
	if offset == f.lastEnd {
		f.streak++
	} else {
		// A new stream: the covered-window mark belongs to the old one.
		f.streak = 0
		f.raNext = 0
	}
	f.lastEnd = offset + int64(length)
	if f.streak < 2 {
		return
	}
	start := (f.lastEnd + f.ps - 1) / f.ps
	if start < f.raNext {
		start = f.raNext // window already covered
	}
	limit := (f.lastEnd+f.ps-1)/f.ps + int64(f.cfg.ReadaheadPages)
	if max := f.exported / f.ps; limit > max {
		limit = max
	}
	for idx := start; idx < limit; idx++ {
		if f.cache[idx] != nil {
			continue
		}
		f.stats.Readaheads++
		fl := f.getFill(idx, false, nil)
		f.gate.submit(false, idx*f.ps, int(f.ps), fl.fn)
	}
	if limit > f.raNext {
		f.raNext = limit
	}
}

// write serves one buffered write: copy into cached pages and mark them
// dirty. Full-page spans over uncached pages allocate fresh pages;
// partial spans must read-modify-write; when nothing is evictable the
// write goes straight down (write-through) instead of blocking.
func (f *FS) write(offset int64, length int, done func()) {
	f.stats.Writes++
	sp := f.pr.TakeSpan()
	if f.pages == 0 {
		f.pr.SetSpan(sp)
		f.gate.submit(true, offset, length, done)
		return
	}
	first, last := offset/f.ps, (offset+int64(length)-1)/f.ps
	n := last - first + 1
	f.stats.PagesWritten += uint64(n)
	f.charge(cpu.FnSyscall, f.costs.Syscall)
	f.chargeN(cpu.FnVFS, f.costs.Lookup, n)
	f.chargeN(cpu.FnVFS, f.costs.CopyPerPage, n)
	delay := f.costs.Syscall.Time + (f.costs.Lookup.Time+f.costs.CopyPerPage.Time)*sim.Time(n)

	now := f.eng.Now()
	var op *fsOp
	for idx := first; idx <= last; idx++ {
		pstart := idx * f.ps
		spanOff, spanEnd := offset, offset+int64(length)
		if spanOff < pstart {
			spanOff = pstart
		}
		if spanEnd > pstart+f.ps {
			spanEnd = pstart + f.ps
		}
		if pg := f.cache[idx]; pg != nil {
			f.touch(pg)
			f.markDirty(pg, now)
			continue
		}
		if spanEnd-spanOff == f.ps {
			// Full overwrite: no fill needed.
			if pg := f.insertPage(idx); pg != nil {
				f.chargeN(cpu.FnVFS, f.costs.Insert, 1)
				delay += f.costs.Insert.Time
				f.markDirty(pg, now)
				continue
			}
			f.stats.WriteThrough++
			if op == nil {
				op = f.getOp(done)
				op.span = sp
			}
			op.left++
			f.pr.SetSpan(op.span)
			f.gate.submit(true, spanOff, int(spanEnd-spanOff), op.fn)
			continue
		}
		// Partial span over an uncached page: read it first (after the
		// syscall-side walk), then modify — the copy rides the tail.
		f.stats.RMWReads++
		if op == nil {
			op = f.getOp(done)
			op.span = sp
		}
		op.left++
		op.tail += f.costs.CopyPerPage.Time
		f.eng.AfterArg(f.costs.Syscall.Time+f.costs.Lookup.Time,
			f.fillIssueFn, f.getFill(idx, true, op))
	}
	if op == nil {
		sp.Tail(probe.PCacheHit)
		f.eng.After(delay, done)
	} else {
		op.left++
		f.eng.After(delay, op.fn)
	}
	f.maybeWriteback()
}

// gate serializes child access when the child serves one request at a
// time (a bare pvsync2 stack) and passes straight through otherwise.
type gate struct {
	dev    Backend
	serial bool
	busy   bool
	q      sim.FIFO[*gateOp]
	free   *gateOp
	pr     *probe.Probe
}

// gateOp is one queued child request; fn is bound once. The span rides
// the queue with the op so a deferred issue hands the right span to the
// child, not whatever the register holds by then.
type gateOp struct {
	g      *gate
	write  bool
	flush  bool
	offset int64
	length int
	done   func()
	span   *probe.Span
	fn     func()
	next   *gateOp
}

// get takes a queued-op context from the free list, binding its child
// completion closure once on first allocation.
//
//ullvet:pool get
func (g *gate) get() *gateOp {
	op := g.free
	if op == nil {
		op = &gateOp{g: g}
		op.fn = func() { op.g.opDone(op) }
	} else {
		g.free = op.next
		op.next = nil
	}
	return op
}

// put clears an op's caller state and returns it to the free list.
//
//ullvet:pool put
func (g *gate) put(op *gateOp) {
	op.done = nil
	op.next = g.free
	g.free = op
}

func (g *gate) submit(write bool, offset int64, length int, done func()) {
	if !g.serial {
		g.dev.Submit(write, offset, length, done)
		return
	}
	op := g.get()
	op.write, op.flush = write, false
	op.offset, op.length = offset, length
	op.done = done
	op.span = g.pr.TakeSpan()
	g.dispatch(op)
}

func (g *gate) flush(done func()) {
	if !g.serial {
		g.dev.Flush(done)
		return
	}
	op := g.get()
	op.write, op.flush = false, true
	op.offset, op.length = 0, 0
	op.done = done
	op.span = g.pr.TakeSpan()
	g.dispatch(op)
}

func (g *gate) dispatch(op *gateOp) {
	if !g.busy && g.q.Len() == 0 {
		g.issue(op)
	} else {
		g.q.Push(op)
	}
}

func (g *gate) issue(op *gateOp) {
	g.busy = true
	g.pr.SetSpan(op.span)
	op.span = nil
	if op.flush {
		g.dev.Flush(op.fn)
	} else {
		g.dev.Submit(op.write, op.offset, op.length, op.fn)
	}
}

func (g *gate) opDone(op *gateOp) {
	done := op.done
	g.put(op)
	g.busy = false
	if g.q.Len() > 0 {
		g.issue(g.q.Pop())
	}
	done()
}
