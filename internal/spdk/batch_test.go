package spdk

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// TestSPDKBatchDrain verifies that several completions becoming visible
// before one poll-loop boundary are reaped by a single drain pass, the
// way spdk_nvme_qpair_process_completions batches.
func TestSPDKBatchDrain(t *testing.T) {
	r := newRig()
	s := NewStack(r.eng, r.qp, r.core, DefaultCosts())
	const n = 12
	completions := make([]sim.Time, 0, n)
	for i := 0; i < n; i++ {
		// Same offset pattern: completions land close together.
		s.Submit(false, int64(i%4)*4096, 4096, func() {
			completions = append(completions, r.eng.Now())
		})
	}
	r.eng.Run()
	if len(completions) != n {
		t.Fatalf("completed %d/%d", len(completions), n)
	}
	// Completion times must be quantized to the poll-iteration grid
	// (plus the fixed completion dispatch cost).
	iter := s.costs.PollIter()
	dispatch := s.costs.Complete.Time
	for i, c := range completions {
		if (c-dispatch)%iter != 0 {
			t.Fatalf("completion %d at %v not on the poll grid", i, c)
		}
	}
}

func TestSPDKFinalizeBeforeAnyIO(t *testing.T) {
	r := newRig()
	s := NewStack(r.eng, r.qp, r.core, DefaultCosts())
	s.Finalize(100 * sim.Microsecond) // no I/O ever started: no-op
	if r.core.Loads() != 0 {
		t.Fatal("finalize charged an idle stack")
	}
}

func TestSPDKSubmitChargesQpairCheck(t *testing.T) {
	r := newRig()
	s := NewStack(r.eng, r.qp, r.core, DefaultCosts())
	done := false
	s.Submit(true, 0, 4096, func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("incomplete")
	}
	// One check per submission (reset guard), before any Finalize.
	if calls := r.core.Acct(cpu.FnQpairCheck).Calls; calls != 1 {
		t.Fatalf("qpair_check calls = %d, want 1", calls)
	}
}
