package spdk

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/nvme"
	"repro/internal/sim"
	"repro/internal/ssd"
)

func smallULL() ssd.Config {
	cfg := ssd.ZSSD()
	cfg.Channels = 4
	cfg.WaysPerChannel = 2
	cfg.PlanesPerDie = 1
	cfg.PagesPerBlock = 16
	cfg.BlocksPerUnit = 16
	cfg.FirmwareJitter = 0
	cfg.NAND.ReadJitter = 0
	cfg.NAND.ProgramJitter = 0
	cfg.NAND.ReadRetryProb = 0
	return cfg
}

type rig struct {
	eng  *sim.Engine
	dev  *ssd.Device
	qp   *nvme.QueuePair
	core *cpu.Core
}

func newRig() *rig {
	eng := sim.NewEngine()
	dev := ssd.NewDevice(smallULL(), eng)
	qp := nvme.New(eng, dev, nvme.DefaultConfig())
	return &rig{eng: eng, dev: dev, qp: qp, core: cpu.NewCore()}
}

func runSerial(r *rig, submit func(bool, int64, int, func()), n int) sim.Time {
	var total sim.Time
	done := 0
	var issue func()
	issue = func() {
		start := r.eng.Now()
		submit(false, int64(done%64)*4096, 4096, func() {
			total += r.eng.Now() - start
			done++
			if done < n {
				issue()
			}
		})
	}
	issue()
	r.eng.Run()
	return total / sim.Time(n)
}

func TestSPDKCompletes(t *testing.T) {
	r := newRig()
	s := NewStack(r.eng, r.qp, r.core, DefaultCosts())
	lat := runSerial(r, s.Submit, 20)
	if lat <= 0 || lat > 60*sim.Microsecond {
		t.Fatalf("SPDK latency %v outside sanity window", lat)
	}
	if s.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d", s.Outstanding())
	}
}

func TestSPDKFasterThanKernelInterrupt(t *testing.T) {
	// Kernel interrupt stack vs SPDK stack on the same device model.
	rInt := newRig()
	kStack := kernel.NewSyncStack(rInt.eng, rInt.qp, rInt.core, kernel.DefaultCosts(), kernel.Interrupt)
	latInt := runSerial(rInt, kStack.Submit, 50)

	rSPDK := newRig()
	sStack := NewStack(rSPDK.eng, rSPDK.qp, rSPDK.core, DefaultCosts())
	latSPDK := runSerial(rSPDK, sStack.Submit, 50)

	if latSPDK >= latInt {
		t.Fatalf("SPDK %v not faster than kernel interrupt %v", latSPDK, latInt)
	}
	reduction := float64(latInt-latSPDK) / float64(latInt)
	if reduction < 0.05 || reduction > 0.5 {
		t.Fatalf("SPDK reduction %.1f%% outside plausible ULL window", reduction*100)
	}
}

func TestSPDKNoKernelTime(t *testing.T) {
	r := newRig()
	s := NewStack(r.eng, r.qp, r.core, DefaultCosts())
	runSerial(r, s.Submit, 20)
	s.Finalize(r.eng.Now())
	if r.core.KernelTime() != 0 {
		t.Fatalf("SPDK charged %v kernel time", r.core.KernelTime())
	}
	if r.core.UserTime() == 0 {
		t.Fatal("SPDK charged no user time")
	}
}

func TestSPDKFinalizeSaturatesCPU(t *testing.T) {
	r := newRig()
	s := NewStack(r.eng, r.qp, r.core, DefaultCosts())
	runSerial(r, s.Submit, 50)
	s.Finalize(r.eng.Now())
	u := r.core.Utilization(r.eng.Now())
	if u.User < 90 {
		t.Fatalf("SPDK user utilization %.1f%%, want ~100%%", u.User)
	}
	if u.Kernel != 0 {
		t.Fatalf("SPDK kernel utilization %.1f%%, want 0", u.Kernel)
	}
}

func TestSPDKFinalizeIdempotent(t *testing.T) {
	r := newRig()
	s := NewStack(r.eng, r.qp, r.core, DefaultCosts())
	runSerial(r, s.Submit, 5)
	s.Finalize(r.eng.Now())
	loads := r.core.Loads()
	s.Finalize(r.eng.Now())
	if r.core.Loads() != loads {
		t.Fatal("double Finalize double-charged")
	}
}

func TestSPDKMoreMemoryInstructionsThanKernelPoll(t *testing.T) {
	rPoll := newRig()
	kStack := kernel.NewSyncStack(rPoll.eng, rPoll.qp, rPoll.core, kernel.DefaultCosts(), kernel.Poll)
	runSerial(rPoll, kStack.Submit, 50)

	rSPDK := newRig()
	sStack := NewStack(rSPDK.eng, rSPDK.qp, rSPDK.core, DefaultCosts())
	runSerial(rSPDK, sStack.Submit, 50)
	sStack.Finalize(rSPDK.eng.Now())

	if rSPDK.core.Loads() <= rPoll.core.Loads() {
		t.Fatalf("SPDK loads %d not above kernel poll %d", rSPDK.core.Loads(), rPoll.core.Loads())
	}
	if rSPDK.core.Stores() <= rPoll.core.Stores() {
		t.Fatalf("SPDK stores %d not above kernel poll %d", rSPDK.core.Stores(), rPoll.core.Stores())
	}
}

func TestSPDKQueueDepthOverlap(t *testing.T) {
	r := newRig()
	s := NewStack(r.eng, r.qp, r.core, DefaultCosts())
	const qd, total = 8, 100
	issued, completed := 0, 0
	var pump func()
	pump = func() {
		for issued < total && s.Outstanding() < qd {
			off := int64(issued%64) * 4096
			issued++
			s.Submit(false, off, 4096, func() {
				completed++
				pump()
			})
		}
	}
	pump()
	r.eng.Run()
	if completed != total {
		t.Fatalf("completed %d/%d", completed, total)
	}
}

func TestSPDKPollFunctionBreakdown(t *testing.T) {
	r := newRig()
	s := NewStack(r.eng, r.qp, r.core, DefaultCosts())
	runSerial(r, s.Submit, 50)
	s.Finalize(r.eng.Now())
	proc := r.core.Acct(cpu.FnSPDKProcess).Loads
	pcie := r.core.Acct(cpu.FnPCIeProcess).Loads
	check := r.core.Acct(cpu.FnQpairCheck).Loads
	if proc == 0 || pcie == 0 || check == 0 {
		t.Fatal("SPDK poll functions uncharged")
	}
	if proc <= pcie {
		t.Fatalf("process_completions loads (%d) must dominate pcie (%d)", proc, pcie)
	}
}

func TestSPDKDefaultCostsSane(t *testing.T) {
	c := DefaultCosts()
	if c.PollIter() <= 0 {
		t.Fatal("poll iteration must take time")
	}
	perIterLoads := c.IterProcess.Loads + c.IterPCIe.Loads + c.IterCheck.Loads
	k := kernel.DefaultCosts()
	if perIterLoads <= k.PollIterBlk.Loads+k.PollIterNVMe.Loads {
		t.Fatal("SPDK per-iteration loads must exceed kernel polling's")
	}
}
