// Package spdk models the Intel SPDK 19.07 kernel-bypass stack of the
// paper: the NVMe driver lives in userspace (uio/vfio), PCIe BARs are
// mapped into DPDK huge pages, submission costs no syscalls, and — since
// userland cannot take ISRs — completion is always by polling. The poll
// loop's instruction profile follows the functions the paper measures:
// spdk_nvme_qpair_process_completions, nvme_pcie_qpair_process_completions
// and the inlined nvme_qpair_check_enabled.
package spdk

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/nvme"
	"repro/internal/probe"
	"repro/internal/sim"
)

// StageCost mirrors kernel.StageCost for the userspace stack.
type StageCost struct {
	Time   sim.Time
	Loads  uint64
	Stores uint64
}

// Costs is the calibrated cost table of the SPDK datapath.
type Costs struct {
	AppSetup StageCost // benchmark user code (fio_plugin engine)
	Submit   StageCost // SQE build in the huge page + doorbell MMIO
	// Per poll-loop iteration. SPDK walks the whole qpair state without
	// blk-mq's cookie filtering, touching far more memory per iteration
	// than nvme_poll (Figures 21/22).
	IterProcess StageCost // spdk_nvme_qpair_process_completions
	IterPCIe    StageCost // nvme_pcie_qpair_process_completions
	IterCheck   StageCost // nvme_qpair_check_enabled (inline, guards resets)
	Complete    StageCost // completion callback dispatch
}

// PollIter reports the duration of one full poll-loop iteration.
func (c *Costs) PollIter() sim.Time {
	return c.IterProcess.Time + c.IterPCIe.Time + c.IterCheck.Time
}

// DefaultCosts returns the calibrated SPDK cost table.
func DefaultCosts() Costs {
	return Costs{
		AppSetup:    StageCost{Time: 1000 * sim.Nanosecond, Loads: 320, Stores: 150},
		Submit:      StageCost{Time: 380 * sim.Nanosecond, Loads: 90, Stores: 95},
		IterProcess: StageCost{Time: 60 * sim.Nanosecond, Loads: 85, Stores: 40},
		IterPCIe:    StageCost{Time: 40 * sim.Nanosecond, Loads: 50, Stores: 35},
		IterCheck:   StageCost{Time: 20 * sim.Nanosecond, Loads: 45, Stores: 2},
		Complete:    StageCost{Time: 200 * sim.Nanosecond, Loads: 70, Stores: 40},
	}
}

// Stack is one SPDK-driven queue pair. Any number of I/Os may be
// outstanding (fio_plugin drives queue depth from userspace).
type Stack struct {
	eng   *sim.Engine
	qp    *nvme.QueuePair
	proc  *cpu.Proc
	costs Costs
	pr    *probe.Probe

	// pending is a direct-mapped CID table (the CID space is uint16, so
	// the table covers it fully — no hashing, no collisions).
	pending   []func()
	nOut      int
	freeReq   *spdkReq   // recycled submission contexts
	freeBatch *doneBatch // recycled completion batches
	drainFn   func()     // bound once: batch-process visible CQEs
	deliverFn func(any)  // bound once: deliver one drained batch
	nextCID   uint16

	started    bool
	firstStart sim.Time
	drainAt    sim.Time // scheduled drain boundary, 0 if none
	finalized  bool
}

// spdkReq carries one submission across the doorbell delay; fn is bound
// once and the object recycles itself right after ringing (the queue pair
// copies everything it needs synchronously).
type spdkReq struct {
	s      *Stack
	write  bool
	flush  bool // device flush barrier instead of a data transfer
	offset int64
	length int
	cid    uint16
	span   *probe.Span
	fn     func()
	next   *spdkReq
}

// getReq takes a submission context from the free list; the submit
// closure bound on first allocation recycles it right after ringing
// the doorbell, so there is no separate put helper.
//
//ullvet:pool get
func (s *Stack) getReq() *spdkReq {
	r := s.freeReq
	if r == nil {
		r = &spdkReq{s: s}
		r.fn = func() {
			r.s.pr.SetSpan(r.span)
			if r.flush {
				r.s.qp.SubmitFlush(r.cid)
			} else {
				r.s.qp.Submit(r.write, r.offset, r.length, r.cid)
			}
			r.span = nil
			r.next = r.s.freeReq
			r.s.freeReq = r
		}
		return r
	}
	s.freeReq = r.next
	r.next = nil
	return r
}

// NewStack wires an SPDK stack onto a queue pair using the legacy
// single-core accounting model; interrupts are disabled permanently
// (userspace cannot service them).
func NewStack(eng *sim.Engine, qp *nvme.QueuePair, core *cpu.Core, costs Costs) *Stack {
	return NewStackOn(eng, qp, cpu.SoloProc(core), costs)
}

// NewStackOn wires an SPDK stack onto a queue pair, executing on the
// given core handle. The reactor pins its core outright — SPDK's
// thread-per-core model — so topology lowering keeps other stacks off it
// when the core set arbitrates.
func NewStackOn(eng *sim.Engine, qp *nvme.QueuePair, proc *cpu.Proc, costs Costs) *Stack {
	s := &Stack{
		eng:     eng,
		qp:      qp,
		proc:    proc,
		costs:   costs,
		pr:      probe.Get(eng),
		pending: make([]func(), 1<<16),
	}
	if proc.Set().Arbitrating() {
		proc.Pin()
	}
	qp.EnableInterrupts(false)
	qp.SetCompletionHook(s.onVisible)
	s.drainFn = s.drain
	s.deliverFn = s.deliver
	return s
}

func (s *Stack) charge(fn cpu.Fn, c StageCost) {
	s.proc.Charge(fn, c.Time, c.Loads, c.Stores)
}

// Submit issues one I/O through the userspace driver.
func (s *Stack) Submit(write bool, offset int64, length int, done func()) {
	s.begin(write, false, offset, length, done)
}

// Flush issues one NVMe Flush through the userspace driver (SPDK's
// spdk_nvme_ns_cmd_flush): the same submission costs as a data command,
// no transfer, completion by polling like everything else.
func (s *Stack) Flush(done func()) {
	s.begin(false, true, 0, 0, done)
}

func (s *Stack) begin(write, flush bool, offset int64, length int, done func()) {
	sp := s.pr.TakeSpan()
	if !s.started {
		s.started = true
		s.firstStart = s.eng.Now()
	}
	s.charge(cpu.FnAppUser, s.costs.AppSetup)
	s.charge(cpu.FnSPDKSubmit, s.costs.Submit)
	// Every submission re-validates the qpair (controller-reset guard).
	s.charge(cpu.FnQpairCheck, s.costs.IterCheck)

	r := s.getReq()
	r.write = write
	r.flush = flush
	r.offset = offset
	r.length = length
	r.cid = s.nextCID
	r.span = sp
	s.nextCID++
	if s.pending[r.cid] != nil {
		panic(fmt.Sprintf("spdk: CID %d reused while outstanding", r.cid))
	}
	s.pending[r.cid] = done
	s.nOut++
	delay := s.costs.AppSetup.Time + s.costs.Submit.Time + s.costs.IterCheck.Time
	s.eng.After(delay, r.fn)
}

// onVisible quantizes completion detection to the poll-loop iteration
// grid. A single drain event handles every CQE visible by that boundary,
// matching SPDK's batch completion processing.
func (s *Stack) onVisible() {
	iter := s.costs.PollIter()
	now := s.eng.Now()
	boundary := ((now + iter - 1) / iter) * iter
	if boundary == now {
		boundary += iter
	}
	if s.drainAt >= boundary {
		return // a drain is already scheduled at or after this boundary
	}
	s.drainAt = boundary
	s.eng.At(boundary, s.drainFn)
}

// drain batch-processes every CQE visible at the poll-loop boundary.
func (s *Stack) drain() {
	s.drainAt = 0
	var b *doneBatch
	for {
		cid, ok := s.qp.Poll()
		if !ok {
			break
		}
		done := s.pending[cid]
		if done == nil {
			panic(fmt.Sprintf("spdk: completion for unknown CID %d", cid))
		}
		s.pending[cid] = nil
		s.nOut--
		s.charge(cpu.FnSPDKProcess, s.costs.Complete)
		if b == nil {
			b = s.getBatch()
		}
		b.dones = append(b.dones, done)
	}
	if b == nil {
		return
	}
	// Every drained CQE observes the same completion-processing delay,
	// so the whole batch rides one scheduled event; running the dones in
	// drain order preserves the firing order the per-CQE events had.
	s.eng.AfterArg(s.costs.Complete.Time, s.deliverFn, b)
}

// doneBatch carries every completion drained at one poll boundary
// through the completion-processing delay as a single scheduled event.
type doneBatch struct {
	dones []func()
	next  *doneBatch
}

// getBatch takes a completion batch from the free list.
//
//ullvet:pool get
func (s *Stack) getBatch() *doneBatch {
	b := s.freeBatch
	if b == nil {
		return &doneBatch{}
	}
	s.freeBatch = b.next
	b.next = nil
	return b
}

// putBatch empties a delivered batch and returns it to the free list.
//
//ullvet:pool put
func (s *Stack) putBatch(b *doneBatch) {
	b.dones = b.dones[:0]
	b.next = s.freeBatch
	s.freeBatch = b
}

// deliver runs one drained batch after the completion-processing delay.
func (s *Stack) deliver(arg any) {
	b := arg.(*doneBatch)
	for i := 0; i < len(b.dones); i++ {
		fn := b.dones[i]
		b.dones[i] = nil
		fn()
	}
	s.putBatch(b)
}

// Outstanding reports in-flight I/Os.
func (s *Stack) Outstanding() int { return s.nOut }

// Finalize charges the continuous poll spin for the whole active span
// [first submit, end]. SPDK's reactor never sleeps: between and during
// I/Os the loop keeps checking the qpair, which is where its CPU and
// memory-instruction bills come from (Figures 20-22). Call once, at the
// end of a run.
func (s *Stack) Finalize(end sim.Time) {
	if s.finalized || !s.started || end <= s.firstStart {
		return
	}
	s.finalized = true
	span := end - s.firstStart
	// Subtract time already charged explicitly to user functions so the
	// utilization sums to ~100%, not above.
	for _, fn := range []cpu.Fn{cpu.FnAppUser, cpu.FnSPDKSubmit, cpu.FnSPDKProcess, cpu.FnQpairCheck} {
		span -= s.proc.Core().Acct(fn).Time
	}
	if span <= 0 {
		return
	}
	iters := int64(span / s.costs.PollIter())
	if iters <= 0 {
		return
	}
	chargeIter := func(fn cpu.Fn, c StageCost) {
		s.proc.Charge(fn, c.Time*sim.Time(iters), c.Loads*uint64(iters), c.Stores*uint64(iters))
	}
	chargeIter(cpu.FnSPDKProcess, s.costs.IterProcess)
	chargeIter(cpu.FnPCIeProcess, s.costs.IterPCIe)
	chargeIter(cpu.FnQpairCheck, s.costs.IterCheck)
}
