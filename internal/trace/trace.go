// Package trace captures and replays block-I/O traces from simulator
// runs. A Recorder attached to a workload collects one Event per
// completed I/O; traces round-trip through a compact CSV form, and a
// Replayer re-issues a trace against any system — the standard tooling a
// storage-characterization study grows next (replaying production traces
// against candidate devices).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Event is one completed I/O.
type Event struct {
	Issue   sim.Time // issue time (virtual)
	Write   bool
	Offset  int64
	Len     int
	Latency sim.Time
}

// Recorder accumulates events in issue order.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one event.
func (r *Recorder) Record(e Event) { r.events = append(r.events, e) }

// Events returns the recorded events (shared slice; callers must not
// mutate).
func (r *Recorder) Events() []Event { return r.events }

// Len reports the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// WriteCSV emits the trace as CSV: issue_ns,op,offset,len,latency_ns.
func (r *Recorder) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("issue_ns,op,offset,len,latency_ns\n"); err != nil {
		return err
	}
	for _, e := range r.events {
		op := "R"
		if e.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d,%d\n",
			int64(e.Issue), op, e.Offset, e.Len, int64(e.Latency)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. Latency values are
// optional on input (a replay target re-measures them).
func ReadCSV(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "issue_ns") || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 4 {
			return nil, fmt.Errorf("trace: line %d: want at least 4 fields, got %d", line, len(fields))
		}
		issue, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad issue time: %v", line, err)
		}
		var write bool
		switch strings.ToUpper(strings.TrimSpace(fields[1])) {
		case "R":
			write = false
		case "W":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, fields[1])
		}
		off, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad offset: %v", line, err)
		}
		n, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad length: %v", line, err)
		}
		ev := Event{Issue: sim.Time(issue), Write: write, Offset: off, Len: n}
		if len(fields) >= 5 && fields[4] != "" {
			lat, err := strconv.ParseInt(fields[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad latency: %v", line, err)
			}
			ev.Latency = sim.Time(lat)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Target is anything that accepts block I/O (core.System satisfies it).
type Target interface {
	Submit(write bool, offset int64, length int, done func())
}

// Engine schedules replay events (sim.Engine satisfies it).
type Engine interface {
	Now() sim.Time
	At(t sim.Time, fn func()) sim.EventRef
}

// Replay issues the trace against target with its original timing
// (open-loop: each I/O fires at its recorded issue time, regardless of
// completions) and records the new latencies into out (which may be
// nil). It returns the number of I/Os that will be issued; the caller
// runs the engine to completion.
//
// Scheduling is chained: each replay event schedules the next, so the
// engine's heap holds one pending trace event (plus the in-flight I/Os)
// at a time instead of one entry per trace line — a million-I/O trace
// costs O(in-flight) heap, not O(trace). Issue times that run backwards
// are clamped to the current instant rather than panicking the engine.
func Replay(eng Engine, target Target, events []Event, out *Recorder) int {
	if len(events) == 0 {
		return 0
	}
	r := &replayer{eng: eng, target: target, events: events, out: out, base: eng.Now()}
	r.stepFn = r.step
	r.schedule()
	return len(events)
}

type replayer struct {
	eng    Engine
	target Target
	events []Event
	out    *Recorder
	base   sim.Time
	idx    int
	stepFn func() // bound once: chaining allocates no per-event closure
}

// schedule arms the event at r.idx.
func (r *replayer) schedule() {
	t := r.base + r.events[r.idx].Issue
	if now := r.eng.Now(); t < now {
		t = now
	}
	r.eng.At(t, r.stepFn)
}

// step issues the current trace event and chains the next one. The next
// arrival is scheduled before the submission so that, at equal
// timestamps, the replayed request stream keeps firing ahead of the
// completion machinery the submission schedules.
func (r *replayer) step() {
	e := r.events[r.idx]
	r.idx++
	if r.idx < len(r.events) {
		r.schedule()
	}
	start := r.eng.Now()
	r.target.Submit(e.Write, e.Offset, e.Len, func() {
		if r.out != nil {
			r.out.Record(Event{
				Issue:   start - r.base,
				Write:   e.Write,
				Offset:  e.Offset,
				Len:     e.Len,
				Latency: r.eng.Now() - start,
			})
		}
	})
}
