package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func sample() []Event {
	return []Event{
		{Issue: 0, Write: false, Offset: 4096, Len: 4096, Latency: 1000},
		{Issue: 1500, Write: true, Offset: 0, Len: 8192, Latency: 2000},
		{Issue: 9000, Write: false, Offset: 1 << 20, Len: 512, Latency: 1234},
	}
}

func TestRecorderAccumulates(t *testing.T) {
	r := NewRecorder()
	for _, e := range sample() {
		r.Record(e)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Events()[1].Offset != 0 || !r.Events()[1].Write {
		t.Fatal("event order lost")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := NewRecorder()
	for _, e := range sample() {
		r.Record(e)
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	events, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("parsed %d events", len(events))
	}
	for i, e := range events {
		if e != sample()[i] {
			t.Fatalf("event %d: got %+v want %+v", i, e, sample()[i])
		}
	}
}

func TestReadCSVTolerant(t *testing.T) {
	in := `issue_ns,op,offset,len,latency_ns
# comment
100,R,0,4096

200,w,4096,4096,555
300,R,8192,512`
	events, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("parsed %d events", len(events))
	}
	if events[0].Latency != 0 {
		t.Fatal("missing latency must parse as zero")
	}
	if !events[1].Write || events[1].Latency != 555 {
		t.Fatalf("event 1 = %+v", events[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"abc,R,0,4096",
		"100,X,0,4096",
		"100,R,zz,4096",
		"100,R,0,zz",
		"100,R,0,4096,zz",
		"100,R,0",
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) accepted bad input", c)
		}
	}
}

// fakeTarget completes everything after a fixed delay.
type fakeTarget struct {
	eng   *sim.Engine
	delay sim.Time
	seen  []Event
}

func (f *fakeTarget) Submit(write bool, off int64, n int, done func()) {
	f.seen = append(f.seen, Event{Issue: f.eng.Now(), Write: write, Offset: off, Len: n})
	f.eng.After(f.delay, done)
}

func TestReplayPreservesTiming(t *testing.T) {
	eng := sim.NewEngine()
	target := &fakeTarget{eng: eng, delay: 700}
	out := NewRecorder()
	n := Replay(eng, target, sample(), out)
	if n != 3 {
		t.Fatalf("scheduled %d", n)
	}
	eng.Run()
	if len(target.seen) != 3 {
		t.Fatalf("target saw %d", len(target.seen))
	}
	for i, e := range target.seen {
		if e.Issue != sample()[i].Issue {
			t.Errorf("event %d issued at %v, want %v", i, e.Issue, sample()[i].Issue)
		}
	}
	for i, e := range out.Events() {
		if e.Latency != 700 {
			t.Errorf("replayed latency %d = %v, want 700", i, e.Latency)
		}
		if e.Offset != sample()[i].Offset {
			t.Errorf("offset mismatch at %d", i)
		}
	}
}

func TestReplayNilRecorder(t *testing.T) {
	eng := sim.NewEngine()
	target := &fakeTarget{eng: eng, delay: 1}
	Replay(eng, target, sample(), nil)
	eng.Run() // must not panic
}

// upfrontReplay is the pre-chaining reference implementation (one heap
// entry per trace line, scheduled before the run starts). The chained
// Replay must reproduce its output byte for byte.
func upfrontReplay(eng *sim.Engine, target Target, events []Event, out *Recorder) {
	base := eng.Now()
	for _, e := range events {
		e := e
		eng.At(base+e.Issue, func() {
			start := eng.Now()
			target.Submit(e.Write, e.Offset, e.Len, func() {
				if out != nil {
					out.Record(Event{
						Issue:   start - base,
						Write:   e.Write,
						Offset:  e.Offset,
						Len:     e.Len,
						Latency: eng.Now() - start,
					})
				}
			})
		})
	}
}

// syntheticTrace builds a deterministic n-event trace with mixed ops,
// irregular spacing, and runs of identical timestamps (the tie case
// chained scheduling must get right).
func syntheticTrace(n int) []Event {
	events := make([]Event, n)
	var at sim.Time
	for i := range events {
		if i%7 != 0 { // every 7th event shares its predecessor's instant
			at += sim.Time(100 + (i*37)%900)
		}
		events[i] = Event{
			Issue:  at,
			Write:  i%3 == 0,
			Offset: int64(i%512) * 4096,
			Len:    4096,
		}
	}
	return events
}

// TestReplayMatchesUpfrontScheduling: chaining is an optimization, not a
// semantics change — the recorded output must be byte-identical to the
// schedule-everything-up-front reference.
func TestReplayMatchesUpfrontScheduling(t *testing.T) {
	events := syntheticTrace(5000)
	render := func(replay func(*sim.Engine, *fakeTarget, *Recorder)) string {
		eng := sim.NewEngine()
		target := &fakeTarget{eng: eng, delay: 650}
		out := NewRecorder()
		replay(eng, target, out)
		eng.Run()
		var sb strings.Builder
		if err := out.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	chained := render(func(eng *sim.Engine, tg *fakeTarget, out *Recorder) {
		Replay(eng, tg, events, out)
	})
	upfront := render(func(eng *sim.Engine, tg *fakeTarget, out *Recorder) {
		upfrontReplay(eng, tg, events, out)
	})
	if chained != upfront {
		t.Fatal("chained replay output differs from the upfront reference")
	}
}

// meteredEngine watches heap occupancy through the trace.Engine
// interface as Replay schedules events.
type meteredEngine struct {
	*sim.Engine
	maxPending int
}

func (m *meteredEngine) At(t sim.Time, fn func()) sim.EventRef {
	ref := m.Engine.At(t, fn)
	if p := m.Engine.Pending(); p > m.maxPending {
		m.maxPending = p
	}
	return ref
}

// TestReplayHeapStaysBounded is the O(trace) -> O(in-flight) guarantee:
// replaying 50k events must never hold more than a handful of pending
// events (one chained arrival + the in-flight completion).
func TestReplayHeapStaysBounded(t *testing.T) {
	const n = 50_000
	eng := &meteredEngine{Engine: sim.NewEngine()}
	target := &fakeTarget{eng: eng.Engine, delay: 120}
	if got := Replay(eng, target, syntheticTrace(n), nil); got != n {
		t.Fatalf("Replay reported %d, want %d", got, n)
	}
	eng.Engine.Run()
	if len(target.seen) != n {
		t.Fatalf("target saw %d of %d I/Os", len(target.seen), n)
	}
	if eng.maxPending > 8 {
		t.Fatalf("heap held %d pending events for a chained replay, want O(in-flight)", eng.maxPending)
	}
}

// TestReplayOutOfOrderIssueTolerated: a trace whose issue times run
// backwards must clamp to "now" instead of panicking the engine.
func TestReplayOutOfOrderIssueTolerated(t *testing.T) {
	events := []Event{
		{Issue: 5000, Offset: 0, Len: 512},
		{Issue: 1000, Offset: 4096, Len: 512}, // earlier than its predecessor
		{Issue: 9000, Offset: 8192, Len: 512},
	}
	eng := sim.NewEngine()
	target := &fakeTarget{eng: eng, delay: 10}
	Replay(eng, target, events, nil)
	eng.Run()
	if len(target.seen) != 3 {
		t.Fatalf("target saw %d I/Os", len(target.seen))
	}
	if target.seen[1].Issue != 5000 {
		t.Fatalf("out-of-order event issued at %v, want clamped to 5000", target.seen[1].Issue)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	eng := sim.NewEngine()
	if n := Replay(eng, &fakeTarget{eng: eng, delay: 1}, nil, nil); n != 0 {
		t.Fatalf("empty replay reported %d", n)
	}
	eng.Run() // nothing scheduled; must not panic
}

// Property: WriteCSV/ReadCSV round-trips arbitrary events.
func TestCSVRoundTripProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		r := NewRecorder()
		var want []Event
		for i, v := range raw {
			e := Event{
				Issue:   sim.Time(v % 1e9),
				Write:   v&1 == 1,
				Offset:  int64(v%4096) * 4096,
				Len:     int(v%64+1) * 512,
				Latency: sim.Time(i * 17),
			}
			want = append(want, e)
			r.Record(e)
		}
		var sb strings.Builder
		if err := r.WriteCSV(&sb); err != nil {
			return false
		}
		got, err := ReadCSV(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
